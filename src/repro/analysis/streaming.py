"""Streaming reducers: fold statistics online, layer plane by layer plane.

The kernels of :mod:`repro.core.fast` / :mod:`repro.core.fast_batch`
advance one ``(S, W)`` layer plane at a time, but until now every trial's
full ``(K, L, W)`` pulse-time block stayed in memory so the array
reducers of :mod:`repro.analysis.skew` / :mod:`repro.analysis.potentials`
could run afterwards -- stacked, an ``(S, K, L_max, W_max)`` array that
caps sweep size long before the kernel does.  This module is the
incremental counterpart (the incremental-POD template of Fareed &
Singler): a :class:`StreamingReducer` consumes each plane *as the kernel
writes it* and folds it into O(S, L) accumulators, so a sweep with
``store_times=False`` never allocates the pulse-time block at all.

Design constraints, all load-bearing:

* **Bitwise parity.**  Every skew/potential accumulator is a pure
  ``max``-fold.  Max is associative and exact in floating point, so a
  streamed statistic is *bitwise identical* to the corresponding array
  reducer applied to the materialized block (the differential suite pins
  this).  The one non-max statistic -- the correction mean -- folds
  per-plane partial sums in a fixed ``(pulse, layer)`` order, and
  :func:`fold_correction_planes` applies the *same* order to materialized
  blocks so both paths agree bitwise there too.
* **NaN semantics.**  NaN is the simulator's "never pulsed / faulty /
  padding" marker; reducers mask it exactly like
  :func:`repro.analysis.skew.masked_max` (explicit validity masks, no
  warnings suppressed).  Padding cells of a heterogeneous stack are NaN
  and therefore invisible here, as everywhere else.
* **Compaction-aware.**  ``update`` takes the stack's ``active_rows``
  index; accumulators gather/scatter through it like every other
  row-indexed tensor of the compacted kernel.  A fully skipped layer
  step still *must* call ``update`` with an empty ``rows`` array so the
  inter-layer reducer can retire its previous-pulse plane.
* **Picklable + mergeable.**  Accumulators survive the process executor
  (:meth:`StreamedStats.merge` concatenates shards along the trial
  axis), so ``executor="process"`` sweeps stream too.

The inter-layer skew compares pulse ``k+1`` on layer ``l`` against pulse
``k`` on layer ``l+1`` -- a *cross-pulse* comparison -- so its reducer
keeps one ``(S, L, W)`` previous-pulse buffer, the O(S, W)-per-layer
memory floor of the statistic itself; ``finalize`` releases it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.layered import LayeredGraph

__all__ = [
    "StreamGroup",
    "StreamLayout",
    "StreamingReducer",
    "LocalSkewStream",
    "InterLayerSkewStream",
    "GlobalSkewStream",
    "CorrectionStatsStream",
    "PotentialStream",
    "IncrementalSketch",
    "StreamedStats",
    "default_reducers",
    "fold_correction_planes",
]


class StreamGroup:
    """One geometry group of a streamed batch: a graph plus trial rows.

    Mirrors :meth:`BatchResult._geometry_groups`: reducers gather along
    base-graph edges, so trials only share a sweep when they share the
    ``(num_layers, adjacency)`` geometry.
    """

    __slots__ = ("graph", "indices")

    def __init__(self, graph: LayeredGraph, indices: np.ndarray) -> None:
        self.graph = graph
        self.indices = np.asarray(indices, dtype=np.int64)

    @property
    def depth(self) -> int:
        return self.graph.num_layers

    @property
    def width(self) -> int:
        return self.graph.width

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Base-graph edge endpoints (cached on the base graph)."""
        return self.graph.base.edge_index_arrays()

    def active(self, mask: Optional[np.ndarray]) -> np.ndarray:
        """Group rows intersected with the kernel's active-row mask."""
        if mask is None:
            return self.indices
        return self.indices[mask[self.indices]]

    def active_positions(
        self, mask: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(positions-within-group, global rows)`` of the active trials."""
        if mask is None:
            return np.arange(self.indices.size), self.indices
        positions = np.flatnonzero(mask[self.indices])
        return positions, self.indices[positions]

    def distance_matrix(self) -> np.ndarray:
        """All-pairs base distances ``d(v, w)``; shape ``(W, W)``."""
        base = self.graph.base
        n = base.num_nodes
        dist = np.empty((n, n))
        for v in range(n):
            dist[v, :] = base.distances_from(v)
        return dist

    # __slots__ classes pickle their slot dict via protocol 2+, but the
    # process executor must not choke on older default reducers either.
    def __getstate__(self):
        return {"graph": self.graph, "indices": self.indices}

    def __setstate__(self, state):
        self.graph = state["graph"]
        self.indices = state["indices"]


class StreamLayout:
    """Shapes and geometry grouping shared by all reducers of one run."""

    def __init__(
        self,
        graphs: Sequence[LayeredGraph],
        kappas: Sequence[float],
        num_pulses: int,
    ) -> None:
        self.graphs = list(graphs)
        if not self.graphs:
            raise ValueError("need at least one trial graph")
        self.kappas = np.asarray(kappas, dtype=float)
        if self.kappas.shape != (len(self.graphs),):
            raise ValueError("need one kappa per trial graph")
        self.num_pulses = int(num_pulses)
        self.num_trials = len(self.graphs)
        self.depths = np.array(
            [g.num_layers for g in self.graphs], dtype=np.int64
        )
        self.widths = np.array([g.width for g in self.graphs], dtype=np.int64)
        self.num_layers = int(self.depths.max())
        self.width = int(self.widths.max())
        grouped: Dict[Tuple, List[int]] = {}
        group_graphs: Dict[Tuple, LayeredGraph] = {}
        for i, graph in enumerate(self.graphs):
            key = (graph.num_layers, graph.base.adjacency)
            grouped.setdefault(key, []).append(i)
            group_graphs.setdefault(key, graph)
        self.groups = [
            StreamGroup(group_graphs[key], indices)
            for key, indices in grouped.items()
        ]

    @classmethod
    def from_sims(cls, sims, num_pulses: int) -> "StreamLayout":
        """Layout of a :class:`FastSimulation` list (one trial each)."""
        return cls(
            [sim.graph for sim in sims],
            [sim.params.kappa for sim in sims],
            num_pulses,
        )


def _rows_mask(
    rows: Optional[np.ndarray], num_trials: int
) -> Optional[np.ndarray]:
    if rows is None:
        return None
    mask = np.zeros(num_trials, dtype=bool)
    mask[rows] = True
    return mask


def _masked_plane_max(diffs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Last-axis max of ``diffs`` under NaN masking: ``(values, any_valid)``.

    Same −inf-fill construction as :func:`repro.analysis.skew.masked_max`,
    so folding these per-plane maxima reproduces the array reducer's
    joint max bit for bit.
    """
    valid = ~np.isnan(diffs)
    values = np.where(valid, diffs, -np.inf).max(axis=-1, initial=-np.inf)
    return values, valid.any(axis=-1)


class StreamingReducer:
    """Protocol for online statistics folded one layer plane at a time.

    Lifecycle: :meth:`bind` once with the run's :class:`StreamLayout`,
    then :meth:`update` for **every** ``(pulse, layer)`` cell in pulse-
    major order -- including layer 0 and layer steps the compacted kernel
    skipped outright (``rows`` is an empty index array there) -- then
    :meth:`finalize` once the run ends.  ``times``/``corrections`` are
    the kernel's live ``(S, W)`` planes; treat them as read-only views.
    """

    name: str = "reducer"

    def bind(self, layout: StreamLayout) -> None:
        raise NotImplementedError

    def update(
        self,
        pulse: int,
        layer: int,
        times: np.ndarray,
        corrections: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        raise NotImplementedError

    def finalize(self) -> None:
        """Release per-run scratch state (buffers, caches)."""

    def merged(
        self, other: "StreamingReducer", layout: StreamLayout
    ) -> "StreamingReducer":
        """Shard merge: ``self``'s trials followed by ``other``'s."""
        raise NotImplementedError


class _PerLayerMaxStream(StreamingReducer):
    """Shared machinery for (S, columns) running-max accumulators."""

    def _alloc(self, layout: StreamLayout, columns: int) -> None:
        self.layout = layout
        self._acc = np.full((layout.num_trials, columns), -np.inf)
        self._valid = np.zeros((layout.num_trials, columns), dtype=bool)

    def _fold(self, idx: np.ndarray, column: int, diffs: np.ndarray) -> None:
        values, any_valid = _masked_plane_max(diffs)
        self._acc[idx, column] = np.maximum(self._acc[idx, column], values)
        self._valid[idx, column] |= any_valid

    def _trial_columns(self, row: int) -> int:
        raise NotImplementedError

    def trial_values(self, row: int, empty: float = 0.0) -> np.ndarray:
        """One trial's per-layer statistic over its *own* layer count."""
        columns = self._trial_columns(row)
        return np.where(
            self._valid[row, :columns], self._acc[row, :columns], empty
        )

    def merged(self, other, layout):
        out = self._spawn()
        out.bind(layout)
        first = self.layout.num_trials
        out._acc[:first, : self._acc.shape[1]] = self._acc
        out._acc[first:, : other._acc.shape[1]] = other._acc
        out._valid[:first, : self._valid.shape[1]] = self._valid
        out._valid[first:, : other._valid.shape[1]] = other._valid
        out.finalize()
        return out

    def _spawn(self) -> "StreamingReducer":
        return type(self)()


class LocalSkewStream(_PerLayerMaxStream):
    """Intra-layer local skew ``L_l``, streamed.

    Folds ``max_{edges} |t_v - t_w|`` of each plane into an ``(S, L)``
    running max; bitwise equal to
    :func:`repro.analysis.skew.local_skew_layers`.
    """

    name = "local"

    def bind(self, layout):
        self._alloc(layout, layout.num_layers)

    def update(self, pulse, layer, times, corrections, rows=None):
        mask = _rows_mask(rows, self.layout.num_trials)
        for group in self.layout.groups:
            if layer >= group.depth:
                continue
            idx = group.active(mask)
            if idx.size == 0:
                continue
            left, right = group.edges()
            plane = times[idx]
            self._fold(idx, layer, np.abs(plane[:, left] - plane[:, right]))

    def _trial_columns(self, row):
        return int(self.layout.depths[row])


class InterLayerSkewStream(_PerLayerMaxStream):
    """Inter-layer local skew ``L_{l,l+1}``, streamed.

    The statistic compares pulse ``k+1`` on layer ``l`` against pulse
    ``k`` on layer ``l+1`` along own-copy and neighbor-copy edges, so the
    reducer carries one ``(S, L, W)`` previous-pulse buffer -- refreshed
    through ``active_rows`` at every update (a skipped layer writes NaN,
    keeping dead rows inert) and dropped by :meth:`finalize`.  Bitwise
    equal to :func:`repro.analysis.skew.inter_layer_skew_layers`.
    """

    name = "inter_layer"

    def bind(self, layout):
        self._alloc(layout, max(layout.num_layers - 1, 0))
        self._prev = np.full(
            (layout.num_trials, layout.num_layers, layout.width), np.nan
        )

    def update(self, pulse, layer, times, corrections, rows=None):
        mask = _rows_mask(rows, self.layout.num_trials)
        if pulse >= 1 and self._acc.shape[1]:
            for group in self.layout.groups:
                if layer > group.depth - 2:
                    continue
                idx = group.active(mask)
                if idx.size == 0:
                    continue
                left, right = group.edges()
                width = group.width
                upper = times[idx][:, :width]  # pulse k,   layer l
                lower = self._prev[idx, layer + 1, :width]  # k-1, l+1
                self._fold(
                    idx,
                    layer,
                    np.concatenate(
                        [
                            np.abs(upper - lower),
                            np.abs(upper[:, left] - lower[:, right]),
                            np.abs(upper[:, right] - lower[:, left]),
                        ],
                        axis=-1,
                    ),
                )
        if self._prev is not None:
            if rows is None:
                self._prev[:, layer, :] = times
            else:
                self._prev[:, layer, :] = np.nan
                self._prev[rows, layer, :] = times[rows]

    def finalize(self):
        self._prev = None

    def _trial_columns(self, row):
        return max(int(self.layout.depths[row]) - 1, 0)


class GlobalSkewStream(_PerLayerMaxStream):
    """Per-layer global skew (largest same-pulse spread), streamed.

    Geometry-agnostic like :func:`repro.analysis.skew.global_skew_layers`:
    the spread masks NaN cells, so padded lanes never contribute.
    """

    name = "global"

    def bind(self, layout):
        self._alloc(layout, layout.num_layers)

    def update(self, pulse, layer, times, corrections, rows=None):
        idx = np.arange(self.layout.num_trials) if rows is None else rows
        if idx.size == 0:
            return
        plane = times[idx]
        valid = ~np.isnan(plane)
        any_valid = valid.any(axis=-1)
        maxs = np.where(valid, plane, -np.inf).max(axis=-1, initial=-np.inf)
        mins = np.where(valid, plane, np.inf).min(axis=-1, initial=np.inf)
        spread = np.where(any_valid, maxs - mins, -np.inf)
        self._acc[idx, layer] = np.maximum(self._acc[idx, layer], spread)
        self._valid[idx, layer] |= any_valid

    def _trial_columns(self, row):
        return int(self.layout.depths[row])


class CorrectionStatsStream(StreamingReducer):
    """Correction summary (count / mean ``|C|`` / max ``|C|``), streamed.

    The count and max are exact under any fold order; the mean's partial
    sums accumulate in plane order, which is why
    :meth:`BatchResult.correction_stats` reduces materialized blocks
    through :func:`fold_correction_planes` -- the identical op sequence
    -- rather than one flat sum.
    """

    name = "corrections"

    def bind(self, layout):
        self.layout = layout
        trials = layout.num_trials
        self._counts = np.zeros(trials, dtype=np.int64)
        self._totals = np.zeros(trials)
        self._max_abs = np.zeros(trials)

    def update(self, pulse, layer, times, corrections, rows=None):
        mask = _rows_mask(rows, self.layout.num_trials)
        for group in self.layout.groups:
            if layer >= group.depth:
                continue
            idx = group.active(mask)
            if idx.size == 0:
                continue
            # Slice to the group's true width: summing a padded W_max row
            # changes numpy's pairwise-sum association, so the mean would
            # drift ULPs away from a per-trial fold of the same data.
            plane = corrections[idx][:, : group.width]
            finite = np.isfinite(plane)
            abs_vals = np.where(finite, np.abs(plane), 0.0)
            self._counts[idx] += finite.sum(axis=-1)
            self._totals[idx] = self._totals[idx] + abs_vals.sum(axis=-1)
            self._max_abs[idx] = np.maximum(
                self._max_abs[idx], abs_vals.max(axis=-1, initial=0.0)
            )

    def trial_stats(self, row: int) -> Dict[str, float]:
        count = int(self._counts[row])
        mean = self._totals[row] / max(count, 1) if count > 0 else 0.0
        return {
            "max_abs": float(self._max_abs[row]),
            "mean_abs": float(mean),
            "num_corrections": count,
        }

    def stats(self) -> Dict[str, np.ndarray]:
        """All-trials summary in the :meth:`correction_stats` layout."""
        return {
            "max_abs": self._max_abs.copy(),
            "mean_abs": np.where(
                self._counts > 0,
                self._totals / np.maximum(self._counts, 1),
                0.0,
            ),
            "num_corrections": self._counts.copy(),
        }

    def merged(self, other, layout):
        out = CorrectionStatsStream()
        out.bind(layout)
        first = self.layout.num_trials
        out._counts[:first] = self._counts
        out._counts[first:] = other._counts
        out._totals[:first] = self._totals
        out._totals[first:] = other._totals
        out._max_abs[:first] = self._max_abs
        out._max_abs[first:] = other._max_abs
        return out


class PotentialStream(_PerLayerMaxStream):
    """Definition 4.1 potential ``Psi^s(l)``, streamed.

    Folds ``max_{v,w} (t_v - t_w - 4 s kappa d(v, w))`` per plane -- the
    all-pairs weight matrices are cached per geometry group at bind time
    (O(S W^2) once, instead of an (S, K, L, W, W) diff tensor).  Bitwise
    equal to :func:`repro.analysis.potentials.potential_layers` with
    ``coefficient = 4 s kappa``.
    """

    def __init__(self, s: int) -> None:
        self.s = int(s)
        self.name = f"potential_s{self.s}"

    def bind(self, layout):
        self._alloc(layout, layout.num_layers)
        self._weights = []
        for group in layout.groups:
            dist = group.distance_matrix()
            coefficients = 4.0 * self.s * layout.kappas[group.indices]
            self._weights.append(
                coefficients[:, None, None] * dist[None, :, :]
            )

    def update(self, pulse, layer, times, corrections, rows=None):
        mask = _rows_mask(rows, self.layout.num_trials)
        for gi, group in enumerate(self.layout.groups):
            if layer >= group.depth:
                continue
            positions, idx = group.active_positions(mask)
            if idx.size == 0:
                continue
            plane = times[idx][:, : group.width]
            diffs = (
                (plane[:, :, None] - plane[:, None, :])
                - self._weights[gi][positions]
            )
            self._fold(idx, layer, diffs.reshape(idx.size, -1))

    def finalize(self):
        self._weights = None

    def _trial_columns(self, row):
        return int(self.layout.depths[row])

    def trial_values(self, row: int, empty: float = np.nan) -> np.ndarray:
        # Layers with no correct pair have an *undefined* potential (the
        # scalar ``Psi`` reports NaN), hence the NaN default.
        return super().trial_values(row, empty=empty)

    def _spawn(self):
        return PotentialStream(self.s)


class IncrementalSketch(StreamingReducer):
    """Bounded rank-``r`` SVD sketch of the trial block, streamed.

    The Fareed & Singler incremental-POD update: each ``(S, W)`` plane is
    one column (NaN as 0) of the implicit ``(S*W, K*L)`` snapshot matrix,
    folded into a rank-``r`` factorization ``U diag(s) Vt`` by a Brand
    single-column update.  Memory stays ``O(r (S W + K L))`` regardless
    of how many pulses stream past -- the post-hoc-analysis replacement
    for keeping the full block.  The sketch is an *approximation* (exact
    only while the data's rank stays <= r), so it is excluded from the
    bitwise differential matrix.
    """

    name = "sketch"

    def __init__(self, rank: int) -> None:
        if rank < 1:
            raise ValueError(f"sketch rank must be >= 1, got {rank}")
        self.rank = int(rank)

    def bind(self, layout):
        self.layout = layout
        rows = layout.num_trials * layout.width
        self._u = np.zeros((rows, 0))
        self._sv = np.zeros(0)
        self._vt = np.zeros((0, 0))
        self.num_columns = 0

    def update(self, pulse, layer, times, corrections, rows=None):
        column = np.where(np.isnan(times), 0.0, times).reshape(-1)
        rank = self._sv.size
        projection = self._u.T @ column
        residual = column - self._u @ projection
        rho = float(np.linalg.norm(residual))
        core = np.zeros((rank + 1, rank + 1))
        core[:rank, :rank] = np.diag(self._sv)
        core[:rank, rank] = projection
        core[rank, rank] = rho
        core_u, core_s, core_vt = np.linalg.svd(core)
        direction = (
            residual / rho if rho > 1e-12 else np.zeros_like(residual)
        )
        basis = np.concatenate([self._u, direction[:, None]], axis=1)
        grown_v = np.zeros((self.num_columns + 1, rank + 1))
        grown_v[: self.num_columns, :rank] = self._vt.T
        grown_v[self.num_columns, rank] = 1.0
        keep = min(self.rank, core_s.size)
        self._u = basis @ core_u[:, :keep]
        self._sv = core_s[:keep]
        self._vt = (grown_v @ core_vt.T)[:, :keep].T
        self.num_columns += 1

    def reconstruct(self) -> np.ndarray:
        """Best rank-``r`` approximation of the block; ``(S, K, L, W)``."""
        layout = self.layout
        expected = layout.num_pulses * layout.num_layers
        if self.num_columns != expected:
            raise ValueError(
                f"sketch saw {self.num_columns} planes, expected {expected}"
            )
        matrix = (self._u * self._sv[None, :]) @ self._vt
        return matrix.reshape(
            layout.num_trials, layout.width,
            layout.num_pulses, layout.num_layers,
        ).transpose(0, 2, 3, 1)

    def _padded_u(self, width: int) -> np.ndarray:
        if width == self.layout.width:
            return self._u
        trials, own = self.layout.num_trials, self.layout.width
        padded = np.zeros((trials * width, self._sv.size))
        padded.reshape(trials, width, -1)[:, :own, :] = self._u.reshape(
            trials, own, -1
        )
        return padded

    def merged(self, other, layout):
        if self.num_columns != other.num_columns:
            raise ValueError("cannot merge sketches over different pulses")
        out = IncrementalSketch(max(self.rank, other.rank))
        out.layout = layout
        upper = self._padded_u(layout.width)
        lower = other._padded_u(layout.width)
        stacked = np.concatenate(
            [
                self._sv[:, None] * self._vt,
                other._sv[:, None] * other._vt,
            ],
            axis=0,
        )
        if stacked.size == 0:
            out._u = np.zeros((upper.shape[0] + lower.shape[0], 0))
            out._sv = np.zeros(0)
            out._vt = np.zeros((0, self.num_columns))
        else:
            core_u, core_s, core_vt = np.linalg.svd(
                stacked, full_matrices=False
            )
            basis = np.zeros(
                (
                    upper.shape[0] + lower.shape[0],
                    upper.shape[1] + lower.shape[1],
                )
            )
            basis[: upper.shape[0], : upper.shape[1]] = upper
            basis[upper.shape[0]:, upper.shape[1]:] = lower
            keep = min(out.rank, core_s.size)
            out._u = basis @ core_u[:, :keep]
            out._sv = core_s[:keep]
            out._vt = core_vt[:keep]
        out.num_columns = self.num_columns
        return out


class StreamedStats:
    """Bound reducer set of one streamed run (one stack group / trial).

    Attached to every participating :class:`~repro.core.fast.FastResult`
    as ``result.streamed`` with the trial's row in ``result.streamed_row``
    -- one shared object per stack group, which pickling deduplicates
    within a shard payload, so the process executor carries it at no
    per-trial cost (unlike the stripped ``_StackBlock``).
    """

    def __init__(
        self, layout: StreamLayout, reducers: Iterable[StreamingReducer]
    ) -> None:
        self.layout = layout
        # Position of this stream's first trial in the parent batch.
        # BatchRunner stamps it after reassembly; merge() orders shards
        # by it so ``a.merge(b)`` and ``b.merge(a)`` concatenate the
        # trial axis identically (shard futures may resolve out of
        # order).  Standalone streams keep 0 (self-first, the historical
        # behavior).
        self.trial_offset = 0
        self._reducers = list(reducers)
        names = [r.name for r in self._reducers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate reducer names: {names}")
        self._by_name = {r.name: r for r in self._reducers}
        for reducer in self._reducers:
            reducer.bind(layout)

    def update(
        self,
        pulse: int,
        layer: int,
        times: np.ndarray,
        corrections: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        for reducer in self._reducers:
            reducer.update(pulse, layer, times, corrections, rows)

    def finalize(self) -> None:
        for reducer in self._reducers:
            reducer.finalize()

    def names(self) -> List[str]:
        return [r.name for r in self._reducers]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> StreamingReducer:
        return self._by_name[name]

    def get(self, name: str) -> Optional[StreamingReducer]:
        return self._by_name.get(name)

    def merge(self, other: "StreamedStats") -> "StreamedStats":
        """Concatenate two shards' accumulators along the trial axis.

        The pair is ordered by :attr:`trial_offset` (lowest first, self
        on ties), not by argument position, so the merged trial axis
        matches the batch's trial order no matter which shard future
        resolved first.
        """
        if self.layout.num_pulses != other.layout.num_pulses:
            raise ValueError("cannot merge streams over different pulses")
        if self.names() != other.names():
            raise ValueError(
                f"reducer sets differ: {self.names()} vs {other.names()}"
            )
        self_offset = getattr(self, "trial_offset", 0)
        other_offset = getattr(other, "trial_offset", 0)
        first, second = (
            (self, other) if self_offset <= other_offset else (other, self)
        )
        layout = StreamLayout(
            first.layout.graphs + second.layout.graphs,
            np.concatenate([first.layout.kappas, second.layout.kappas]),
            first.layout.num_pulses,
        )
        merged = StreamedStats.__new__(StreamedStats)
        merged.layout = layout
        merged.trial_offset = min(self_offset, other_offset)
        merged._reducers = [
            first[reducer.name].merged(second[reducer.name], layout)
            for reducer in first._reducers
        ]
        merged._by_name = {r.name: r for r in merged._reducers}
        return merged


def default_reducers(
    sketch_rank: Optional[int] = None,
    potential_levels: Sequence[int] = (),
) -> List[StreamingReducer]:
    """The reducer set backing :class:`BatchResult`'s streamed accessors.

    Local / inter-layer / global skew and correction stats always;
    ``potential_levels`` adds one ``Psi^s`` stream per level and
    ``sketch_rank`` an :class:`IncrementalSketch`.

    Example
    -------
    >>> from repro.analysis.streaming import default_reducers
    >>> [r.name for r in default_reducers(potential_levels=(1,))]
    ['local', 'inter_layer', 'global', 'corrections', 'potential_s1']
    """
    reducers: List[StreamingReducer] = [
        LocalSkewStream(),
        InterLayerSkewStream(),
        GlobalSkewStream(),
        CorrectionStatsStream(),
    ]
    reducers.extend(PotentialStream(s) for s in potential_levels)
    if sketch_rank is not None:
        reducers.append(IncrementalSketch(sketch_rank))
    return reducers


def fold_correction_planes(corrections: np.ndarray) -> Dict[str, np.ndarray]:
    """Correction stats of an ``(S, K, L, W)`` block, in *stream order*.

    Reduces plane by plane exactly like :class:`CorrectionStatsStream`
    (same partial-sum association), so materialized and streamed
    correction means agree bitwise -- a flat ``.sum()`` over the block
    would not, since float addition is order-sensitive.
    """
    corrections = np.asarray(corrections, dtype=float)
    trials, pulses, layers, _ = corrections.shape
    counts = np.zeros(trials, dtype=np.int64)
    totals = np.zeros(trials)
    max_abs = np.zeros(trials)
    for pulse in range(pulses):
        for layer in range(layers):
            plane = corrections[:, pulse, layer, :]
            finite = np.isfinite(plane)
            abs_vals = np.where(finite, np.abs(plane), 0.0)
            counts += finite.sum(axis=-1)
            totals = totals + abs_vals.sum(axis=-1)
            max_abs = np.maximum(max_abs, abs_vals.max(axis=-1, initial=0.0))
    return {
        "max_abs": max_abs,
        "mean_abs": np.where(
            counts > 0, totals / np.maximum(counts, 1), 0.0
        ),
        "num_corrections": counts,
    }
