"""ASCII table formatting for benchmark and experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value) -> str:
    """Render a cell: floats get engineering-friendly precision."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render a fixed-width ASCII table.

    ``rows`` cells are passed through :func:`format_value`.  The result is
    ready for ``print`` -- benches emit these so the paper's tables can be
    compared side by side with the measured ones.
    """
    rendered: List[List[str]] = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    separator = "-+-".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
