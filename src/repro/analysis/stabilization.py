"""Stabilization-time measurement for self-stabilization experiments.

After transient faults, a correct execution must (re)converge to a steady
state in which (a) each correct node pulses with period ``Lambda`` (exactly,
since delays and rates are static) and (b) adjacent correct nodes' pulses
stay within the skew bound.  Theorem 1.6 bounds the convergence time by
``O(sqrt(n))`` pulses.

Pulse *indices* are meaningless after corruption (nodes may have swallowed
or invented pulses), so the checks below align pulses by *time*: each pulse
of a node is matched to the nearest pulse of its neighbor.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.trace import Trace
from repro.faults.injection import FaultPlan
from repro.params import Parameters
from repro.topology.layered import LayeredGraph, NodeId

__all__ = ["StabilizationReport", "measure_stabilization"]


@dataclass(frozen=True)
class StabilizationReport:
    """Outcome of a stabilization measurement.

    Attributes
    ----------
    stabilized:
        Whether the execution is clean from ``stable_from`` until the end
        of the observation window.
    stable_from:
        Real time of the last observed violation (``-inf`` when the run was
        clean throughout).
    stabilization_pulses:
        ``stable_from`` converted to pulse periods since the observation
        start (0 when clean throughout).
    violations:
        Count of individual violations observed.
    last_violation:
        Description of the latest violation (None when clean).
    """

    stabilized: bool
    stable_from: float
    stabilization_pulses: int
    violations: int
    last_violation: Optional[str]


def _nearest_offset(sorted_times: List[float], t: float) -> float:
    """Distance from ``t`` to the nearest element of ``sorted_times``."""
    if not sorted_times:
        return math.inf
    i = bisect.bisect_left(sorted_times, t)
    best = math.inf
    for j in (i - 1, i):
        if 0 <= j < len(sorted_times):
            best = min(best, abs(sorted_times[j] - t))
    return best


def measure_stabilization(
    trace: Trace,
    graph: LayeredGraph,
    params: Parameters,
    skew_bound: float,
    fault_plan: Optional[FaultPlan] = None,
    period_tolerance: Optional[float] = None,
    observe_from: float = 0.0,
    observe_until: Optional[float] = None,
    settle_margin: float = 2.0,
) -> StabilizationReport:
    """Find when the execution becomes (and stays) clean.

    A violation is either a per-node period error (consecutive pulse gap
    deviating from ``Lambda`` by more than ``period_tolerance``) or an
    adjacency error (a pulse of a correct node with no pulse of an adjacent
    correct node within ``skew_bound``; the first and last ``settle_margin``
    periods of each node's pulse train are exempt from the adjacency check
    to avoid window-edge artifacts).
    """
    plan = fault_plan or FaultPlan.none()
    if period_tolerance is None:
        # Steady-state gaps are exactly Lambda with static delays/rates;
        # allow the skew bound as slack for the final catch-up pulses.
        period_tolerance = max(skew_bound, 4.0 * params.kappa)

    pulses: Dict[NodeId, List[float]] = {}
    for node in trace.nodes():
        if plan.is_faulty(node):
            continue
        times = sorted(
            t
            for t in trace.pulses_of(node).values()
            if t >= observe_from
            and (observe_until is None or t <= observe_until)
        )
        pulses[node] = times

    violations: List[Tuple[float, str]] = []

    # (a) period regularity per node.
    for node, times in pulses.items():
        for t0, t1 in zip(times, times[1:]):
            if abs((t1 - t0) - params.Lambda) > period_tolerance:
                violations.append(
                    (t1, f"period at {node}: gap {t1 - t0:.4g}")
                )

    # (b) adjacency: every pulse has a matching pulse at each neighbor.
    margin = settle_margin * params.Lambda
    for layer in range(graph.num_layers):
        for v, w in graph.base.edges:
            a, b = (v, layer), (w, layer)
            if a not in pulses or b not in pulses:
                continue
            for x, y in ((a, b), (b, a)):
                ys = pulses[y]
                if not ys:
                    continue
                for t in pulses[x]:
                    if t < ys[0] - margin or t > ys[-1] + margin:
                        continue
                    offset = _nearest_offset(ys, t)
                    if offset > skew_bound:
                        violations.append(
                            (t, f"adjacency {x} vs {y}: offset {offset:.4g}")
                        )

    if not violations:
        return StabilizationReport(True, -math.inf, 0, 0, None)
    violations.sort(key=lambda item: item[0])
    stable_from, last = violations[-1]
    end = observe_until
    if end is None:
        end = max((ts[-1] for ts in pulses.values() if ts), default=stable_from)
    stabilized = stable_from < end
    pulses_to_stabilize = max(
        0, math.ceil((stable_from - observe_from) / params.Lambda)
    )
    return StabilizationReport(
        stabilized=stabilized,
        stable_from=stable_from,
        stabilization_pulses=pulses_to_stabilize,
        violations=len(violations),
        last_violation=last,
    )
