"""Measurement and analysis utilities.

* :mod:`repro.analysis.skew` -- the paper's skew measures (``L_l``,
  ``L_{l,l+1}``, ``L``, global skew) over simulation results.
* :mod:`repro.analysis.potentials` -- the potential functions of
  Definition 4.1 (``psi``, ``Psi``, ``xi``, ``Xi``).
* :mod:`repro.analysis.streaming` -- online (streaming) counterparts of
  the skew/potential reducers plus an incremental low-rank sketch, for
  ``store_times=False`` sweeps that never materialize the pulse-time
  block.
* :mod:`repro.analysis.stats` -- regression helpers (log/linear/power fits)
  used to check growth *shapes* against the paper's bounds.
* :mod:`repro.analysis.report` -- ASCII tables for benchmark output.
"""

from repro.analysis.skew import (
    global_skew,
    global_skew_layers,
    inter_layer_skew,
    inter_layer_skew_layers,
    local_skew_layers,
    local_skew_per_layer,
    max_inter_layer_skew,
    max_local_skew,
    overall_skew,
    times_from_trace,
)
from repro.analysis.potentials import (
    Psi,
    Xi,
    psi,
    xi,
    potential_layers,
    local_skew_bound_from_potential,
)
from repro.analysis.streaming import (
    CorrectionStatsStream,
    GlobalSkewStream,
    IncrementalSketch,
    InterLayerSkewStream,
    LocalSkewStream,
    PotentialStream,
    StreamedStats,
    StreamingReducer,
    StreamLayout,
    default_reducers,
    fold_correction_planes,
)
from repro.analysis.stats import fit_linear, fit_log2, fit_power
from repro.analysis.report import format_table

__all__ = [
    "CorrectionStatsStream",
    "GlobalSkewStream",
    "IncrementalSketch",
    "InterLayerSkewStream",
    "LocalSkewStream",
    "PotentialStream",
    "Psi",
    "StreamLayout",
    "StreamedStats",
    "StreamingReducer",
    "Xi",
    "default_reducers",
    "fit_linear",
    "fit_log2",
    "fit_power",
    "fold_correction_planes",
    "format_table",
    "global_skew",
    "global_skew_layers",
    "inter_layer_skew",
    "inter_layer_skew_layers",
    "local_skew_bound_from_potential",
    "local_skew_layers",
    "local_skew_per_layer",
    "max_inter_layer_skew",
    "max_local_skew",
    "overall_skew",
    "potential_layers",
    "psi",
    "times_from_trace",
    "xi",
]
