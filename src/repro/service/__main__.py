"""Boot the simulation service: ``python -m repro.service [options]``.

Options::

    --host HOST          bind address            (default 127.0.0.1)
    --port PORT          bind port; 0 = ephemeral (default 8631)
    --store-dir DIR      persist cached results as <key>.pkl files
    --concurrency N      jobs executing at once   (default 2)

Prints one ``listening on http://HOST:PORT`` line (the smoke harness
parses it) and serves until interrupted.
"""

from __future__ import annotations

import argparse
import sys

from repro.service.api import ServiceServer
from repro.service.jobs import JobRunner
from repro.service.store import ResultStore


def main(argv: list[str] | None = None) -> int:
    """Parse options, bind the server, and serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8631)
    parser.add_argument("--store-dir", default=None)
    parser.add_argument("--concurrency", type=int, default=2)
    args = parser.parse_args(argv)

    store = ResultStore(directory=args.store_dir)
    runner = JobRunner(store=store, concurrency=args.concurrency)
    server = ServiceServer(host=args.host, port=args.port, runner=runner)
    print(f"listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
