"""Simulation-as-a-service: async job runner, dedup result store, HTTP API.

The library's :class:`~repro.experiments.batch.BatchRunner` is a one-shot
in-process call; this package wraps it in a long-lived serving surface:

* :mod:`repro.service.store` -- a content-addressed result store that
  deduplicates submissions on the trial stack key + seed + pulse budget
  + backend knobs, so a resubmitted grid is a recorded cache hit served
  without touching a kernel.
* :mod:`repro.service.jobs` -- trial-grid specs (the same grids the
  thm11/thm13/cor15/table1 drivers build) plus an asyncio job runner
  that queues submissions, executes them through the existing
  ``executor="process"`` sharding (failure-isolated: a worker killed
  mid-batch loses no completed shard), and streams per-shard progress.
* :mod:`repro.service.api` -- a stdlib HTTP server over the runner
  (submit / poll / stream events / fetch results), and
  :mod:`repro.service.client` -- the matching thin client.

Boot it with ``python -m repro.service`` (see ``docs/service.md``).
"""

from repro.service.api import ServiceServer
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobRunner, build_trials
from repro.service.store import ResultStore, grid_key

__all__ = [
    "Job",
    "JobRunner",
    "ResultStore",
    "ServiceClient",
    "ServiceServer",
    "build_trials",
    "grid_key",
]
