"""Thin urllib client for the service API (submit / poll / fetch).

Mirrors the endpoints of :mod:`repro.service.api` one method each; the
experiment CLI's ``--submit`` path and the test suite both drive the
server through it.  JSON floats round-trip ``float.__repr__`` exactly,
so statistics fetched here compare bitwise against an in-process
``BatchRunner.run``.
"""

from __future__ import annotations

import json
import pickle
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

__all__ = ["ServiceClient"]


class ServiceClient:
    """HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _request(
        self, path: str, body: Optional[Dict] = None, raw: bool = False
    ):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as rsp:
                blob = rsp.read()
        except urllib.error.HTTPError as exc:
            blob = exc.read()
            detail = blob.decode(errors="replace")
            raise RuntimeError(
                f"{request.method} {path} -> HTTP {exc.code}: {detail}"
            ) from exc
        return blob if raw else json.loads(blob.decode())

    # -- endpoints ------------------------------------------------------
    def health(self) -> Dict:
        """``GET /healthz``."""
        return self._request("/healthz")

    def workers(self) -> List[int]:
        """``GET /workers`` -> live worker-process PIDs."""
        return self._request("/workers")["pids"]

    def store_stats(self) -> Dict:
        """``GET /store`` -> dedup-store counters."""
        return self._request("/store")

    def submit(
        self,
        grid: Dict,
        num_pulses: int = 4,
        runner: Optional[Dict] = None,
    ) -> Dict:
        """``POST /jobs`` -> the accepted job's status view."""
        submission: Dict = {"grid": grid, "num_pulses": num_pulses}
        if runner is not None:
            submission["runner"] = runner
        return self._request("/jobs", body=submission)

    def jobs(self) -> List[Dict]:
        """``GET /jobs`` -> all job status views."""
        return self._request("/jobs")["jobs"]

    def job(self, job_id: str) -> Dict:
        """``GET /jobs/<id>``."""
        return self._request(f"/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0, wait: float = 0.0) -> Dict:
        """``GET /jobs/<id>/events`` (long-polls when ``wait > 0``)."""
        return self._request(
            f"/jobs/{job_id}/events?since={int(since)}&wait={float(wait)}"
        )

    def wait(self, job_id: str, timeout: float = 120.0) -> Dict:
        """Long-poll the event stream until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        since = 0
        while True:
            view = self.events(job_id, since=since, wait=2.0)
            since = view["next"]
            if view["status"] in ("done", "failed"):
                return self.job(job_id)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['status']!r} after {timeout}s"
                )

    def result(self, job_id: str) -> Dict:
        """``GET /jobs/<id>/result`` -> the statistics payload (JSON)."""
        return self._request(f"/jobs/{job_id}/result")["result"]

    def result_pickle(self, job_id: str) -> Dict:
        """``GET /jobs/<id>/result?format=pickle`` -> unpickled payload."""
        blob = self._request(f"/jobs/{job_id}/result?format=pickle", raw=True)
        return pickle.loads(blob)
