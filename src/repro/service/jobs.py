"""Trial-grid specs and the asyncio job runner behind the service API.

A *submission* is a JSON-able dict::

    {"grid": {"kind": "thm11", "diameters": [4, 8], "seeds": [0, 1]},
     "num_pulses": 3,
     "runner": {"executor": "process", "shards": 2}}

``grid`` names one of the trial grids the experiment drivers build
(:func:`build_trials` maps it to a ``BatchTrial`` list), ``num_pulses``
is the pulse budget, and ``runner`` overrides
:class:`~repro.experiments.batch.BatchRunner` knobs (validated at
submit time, defaults in :data:`JobRunner.runner_defaults`).

The :class:`JobRunner` owns an asyncio event loop on a background
thread: submissions enqueue as :class:`Job` objects, a bounded set of
worker tasks drains the queue, and each job executes the blocking batch
run on the loop's thread-pool executor so the loop itself stays free to
schedule the next submission.  Execution goes through
``BatchRunner.run(trials, on_shard=...)`` -- the existing
``executor="process"`` sharding, now failure-isolated -- and every
executor event lands in the job's ordered progress stream, which HTTP
clients poll or long-poll.  Results dedup through the
:class:`~repro.service.store.ResultStore`: a job whose grid key is
already stored completes instantly as a recorded cache hit.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.batch import BatchResult, BatchRunner, BatchTrial
from repro.service.store import ResultStore, grid_key

__all__ = [
    "GRID_KINDS",
    "Job",
    "JobRunner",
    "batch_payload",
    "build_trials",
    "to_jsonable",
]


# ----------------------------------------------------------------------
# Trial-grid specs
# ----------------------------------------------------------------------
def _thm11_grid(grid: Dict) -> List[BatchTrial]:
    """``{"diameters": [...], "seeds": [...]}`` -> the thm11 sweep."""
    trials: List[BatchTrial] = []
    seeds = grid.get("seeds", [0])
    for diameter in grid["diameters"]:
        trials.extend(
            BatchRunner.seed_sweep(
                int(diameter),
                [int(s) for s in seeds],
                num_pulses=int(grid.get("num_pulses", 4)),
                num_layers=grid.get("num_layers"),
            )
        )
    return trials


def _seed_sweep_grid(grid: Dict) -> List[BatchTrial]:
    """``{"diameter": D, "seeds": [...]}`` -> one-diameter sweep."""
    return BatchRunner.seed_sweep(
        int(grid["diameter"]),
        [int(s) for s in grid.get("seeds", [0])],
        num_pulses=int(grid.get("num_pulses", 4)),
        num_layers=grid.get("num_layers"),
    )


def _thm13_grid(grid: Dict) -> List[BatchTrial]:
    """``{"diameter", "seeds", "probability_scale"}`` -> the thm13 grid."""
    from repro.experiments.thm13_random_faults import thm13_trials

    seeds = grid.get("seeds")
    if seeds is None:
        seeds = list(range(int(grid.get("num_trials", 10))))
    trials, _ = thm13_trials(
        int(grid["diameter"]),
        [int(s) for s in seeds],
        num_pulses=int(grid.get("num_pulses", 3)),
        probability_scale=float(grid.get("probability_scale", 1.0)),
    )
    return trials


def _cor15_grid(grid: Dict) -> List[BatchTrial]:
    """``{"diameter", "seed"}`` -> the sustained-variation cell."""
    from repro.experiments.cor15_variation import cor15_trial

    trial, _ = cor15_trial(
        int(grid["diameter"]),
        num_pulses=int(grid.get("num_pulses", 6)),
        seed=int(grid.get("seed", 0)),
    )
    return [trial]


def _table1_grid(grid: Dict) -> List[BatchTrial]:
    """``{"diameters", "seeds"}`` -> the Gradient TRIX Table 1 cells."""
    from repro.experiments.table1 import table1_trials

    trials, _ = table1_trials(
        [int(d) for d in grid["diameters"]],
        [int(s) for s in grid.get("seeds", [0])],
        num_pulses=int(grid.get("num_pulses", 4)),
    )
    return trials


#: Grid ``kind`` -> builder.  These are the same grids the experiment
#: drivers batch (thm11/thm13/cor15/table1), factored out of them.
GRID_KINDS = {
    "thm11": _thm11_grid,
    "seed_sweep": _seed_sweep_grid,
    "thm13": _thm13_grid,
    "cor15": _cor15_grid,
    "table1": _table1_grid,
}


def build_trials(grid: Dict) -> List[BatchTrial]:
    """Materialize a grid spec dict into its :class:`BatchTrial` list.

    Example
    -------
    >>> from repro.service.jobs import build_trials
    >>> trials = build_trials({"kind": "thm11", "diameters": [4], "seeds": [0, 1]})
    >>> len(trials)
    2
    """
    if not isinstance(grid, dict) or "kind" not in grid:
        raise ValueError("grid spec must be a dict with a 'kind' field")
    kind = grid["kind"]
    if kind not in GRID_KINDS:
        raise ValueError(
            f"unknown grid kind {kind!r}; use one of {sorted(GRID_KINDS)}"
        )
    trials = GRID_KINDS[kind](grid)
    if not trials:
        raise ValueError(f"grid spec {grid!r} produced no trials")
    return trials


# ----------------------------------------------------------------------
# Result payloads
# ----------------------------------------------------------------------
def batch_payload(batch: BatchResult) -> Dict:
    """The served statistics of a finished batch (arrays, not JSON yet).

    Exactly the reductions the drivers consume, so a grid served over
    HTTP is bitwise-comparable to a direct in-process
    ``BatchRunner.run``; ``to_jsonable`` converts it losslessly (JSON
    floats round-trip ``float.__repr__`` exactly).
    """
    return {
        "num_trials": len(batch),
        "num_pulses": batch.num_pulses,
        "labels": [t.label for t in batch.trials],
        "max_local_skews": batch.max_local_skews(),
        "max_inter_layer_skews": batch.max_inter_layer_skews(),
        "overall_skews": batch.overall_skews(),
        "global_skews": batch.global_skews(),
        "local_skews": batch.local_skews(),
        "inter_layer_skews": batch.inter_layer_skews(),
        "correction_stats": batch.correction_stats(),
        "num_faults": batch.num_faults(),
        "stack_groups": [list(g) for g in batch.stack_groups],
        "fallback_reasons": {
            int(i): why for i, why in batch.fallback_reasons.items()
        },
    }


def to_jsonable(value):
    """Recursively convert a payload to JSON-serializable builtins."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
class Job:
    """One submitted grid: status, ordered progress events, result handle.

    Event appends and reads synchronize on one condition variable, so
    HTTP handler threads can long-poll :meth:`events_since` while the
    executor thread streams shard progress in.
    """

    def __init__(
        self,
        job_id: str,
        spec: Dict,
        trials: Sequence[BatchTrial],
        num_pulses: int,
        runner_kwargs: Dict,
        key: Optional[str],
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.trials = list(trials)
        self.num_pulses = num_pulses
        self.runner_kwargs = dict(runner_kwargs)
        self.key = key
        self.status = "queued"
        self.cache_hit: Optional[bool] = None
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.events: List[Dict] = []
        self._payload = None
        self._cond = threading.Condition()

    def emit(self, event: Dict) -> None:
        """Append one progress event (stamped with a monotonic ``seq``)."""
        with self._cond:
            self.events.append(
                {"seq": len(self.events), "ts": time.time(), **event}
            )
            self._cond.notify_all()

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in ("done", "failed")

    def events_since(
        self, since: int = 0, wait: float = 0.0
    ) -> List[Dict]:
        """Events with ``seq >= since``; optionally block up to ``wait`` s.

        The long-poll building block of the ``/jobs/<id>/events``
        stream: a client holds the request open until new events arrive
        or the job finishes, then resumes from the last ``seq`` it saw.
        """
        deadline = time.monotonic() + wait
        with self._cond:
            while (
                wait > 0
                and len(self.events) <= since
                and not self.done
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            return [dict(e) for e in self.events[since:]]

    def payload(self):
        """The finished statistics payload (None until ``done``)."""
        return self._payload

    def describe(self) -> Dict:
        """JSON-able status view (no trial objects, no payload)."""
        return {
            "id": self.id,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "key": self.key,
            "num_trials": len(self.trials),
            "num_pulses": self.num_pulses,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "num_events": len(self.events),
        }


class JobRunner:
    """Asyncio job queue executing trial grids through ``BatchRunner``.

    ``concurrency`` bounds how many jobs execute at once (each job's
    own process-sharding parallelism is a ``runner`` knob).  The runner
    owns its loop thread; :meth:`start` is idempotent and
    :meth:`shutdown` stops the loop without interrupting the blocking
    batch already in flight (jobs are deterministic and cached, so a
    re-submission after restart is a hit).

    Example
    -------
    >>> from repro.service.jobs import JobRunner
    >>> runner = JobRunner().start()
    >>> job = runner.submit({
    ...     "grid": {"kind": "thm11", "diameters": [4], "seeds": [0]},
    ...     "num_pulses": 2,
    ...     "runner": {"executor": "serial"},
    ... })
    >>> runner.wait(job.id, timeout=60).status
    'done'
    >>> runner.shutdown()
    """

    #: Default ``BatchRunner`` knobs for submissions that name none.
    #: Streaming (``store_times=False``) keeps service memory bounded;
    #: the folded statistics are bit-identical to the materialized path.
    runner_defaults: Dict[str, object] = {
        "executor": "process",
        "store_times": False,
    }

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        concurrency: int = 2,
        runner_defaults: Optional[Dict] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.store = store if store is not None else ResultStore()
        self.concurrency = concurrency
        if runner_defaults is not None:
            self.runner_defaults = dict(runner_defaults)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._queue: Optional[asyncio.Queue] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "JobRunner":
        """Boot the loop thread and its worker tasks (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._ready.clear()
        self._thread = threading.Thread(
            target=self._loop_main, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        return self

    def _loop_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._queue = asyncio.Queue()
        workers = [
            loop.create_task(self._worker()) for _ in range(self.concurrency)
        ]
        self._loop = loop
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            for task in workers:
                task.cancel()
            loop.run_until_complete(
                asyncio.gather(*workers, return_exceptions=True)
            )
            loop.close()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the loop thread; queued-but-unstarted jobs stay queued."""
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
        self._loop = None
        self._thread = None

    # -- submission -----------------------------------------------------
    def _runner_kwargs(self, overrides: Optional[Dict]) -> Dict:
        kwargs = dict(self.runner_defaults)
        kwargs.update(overrides or {})
        return kwargs

    def submit(
        self, submission: Dict, trials: Optional[Sequence[BatchTrial]] = None
    ) -> Job:
        """Validate a submission, enqueue it, and return its :class:`Job`.

        ``trials`` optionally bypasses the grid spec with pre-built
        trial objects (the programmatic path used by in-process callers
        and the chaos smoke test); HTTP submissions always come through
        ``submission["grid"]``.  Validation -- grid building and a
        throwaway ``BatchRunner`` construction -- happens here, in the
        caller's thread, so a bad submission fails the request instead
        of the job.
        """
        if self._loop is None:
            raise RuntimeError("JobRunner is not started; call start() first")
        num_pulses = int(submission.get("num_pulses", 4))
        runner_kwargs = self._runner_kwargs(submission.get("runner"))
        BatchRunner(num_pulses=num_pulses, **runner_kwargs)  # validate knobs
        if trials is None:
            trials = build_trials(submission.get("grid"))
        key = grid_key(trials, num_pulses, runner_kwargs)
        with self._lock:
            job_id = f"job-{next(self._ids):05d}"
            job = Job(
                job_id,
                spec=dict(submission),
                trials=trials,
                num_pulses=num_pulses,
                runner_kwargs=runner_kwargs,
                key=key,
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
        job.emit({"event": "queued", "key": key})
        asyncio.run_coroutine_threadsafe(
            self._queue.put(job), self._loop
        ).result()
        return job

    # -- introspection ----------------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        """The job registered under ``job_id``, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every registered job, in submission order."""
        with self._lock:
            return [self._jobs[i] for i in self._order]

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until ``job_id`` reaches a terminal state (or timeout)."""
        job = self.job(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        deadline = time.monotonic() + timeout
        seen = 0
        while not job.done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {job.status!r} after {timeout}s"
                )
            events = job.events_since(seen, wait=min(remaining, 0.5))
            seen += len(events)
        return job

    # -- execution --------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self._execute, job)
            finally:
                self._queue.task_done()

    def _execute(self, job: Job) -> None:
        """Run one job to completion (executor-thread context)."""
        job.status = "running"
        job.started = time.time()
        job.emit({"event": "started", "num_trials": len(job.trials)})
        try:
            payload = None
            if job.key is not None:
                payload = self.store.get(job.key)
            if payload is not None:
                job.cache_hit = True
                job.emit({"event": "cache", "status": "hit", "key": job.key})
            else:
                job.cache_hit = False
                job.emit(
                    {
                        "event": "cache",
                        "status": (
                            "miss" if job.key is not None else "uncacheable"
                        ),
                        "key": job.key,
                    }
                )
                runner = BatchRunner(
                    num_pulses=job.num_pulses, **job.runner_kwargs
                )
                batch = runner.run(job.trials, on_shard=job.emit)
                payload = batch_payload(batch)
                if job.key is not None:
                    self.store.put(job.key, payload)
            job._payload = payload
            job.status = "done"
            job.finished = time.time()
            job.emit({"event": "done", "cache_hit": job.cache_hit})
        except Exception as exc:
            job.error = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            job.status = "failed"
            job.finished = time.time()
            job.emit({"event": "failed", "error": job.error})
