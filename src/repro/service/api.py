"""Stdlib HTTP surface over the job runner (no third-party framework).

Endpoints (all JSON unless noted):

==============================  ======================================
``GET /healthz``                liveness + job counts
``GET /workers``                PIDs of live worker processes
``GET /store``                  result-store stats (entries/hits/misses)
``POST /jobs``                  submit a grid (see :mod:`.jobs`); 202
``GET /jobs``                   all jobs, submission order
``GET /jobs/<id>``              one job's status view
``GET /jobs/<id>/events``       progress stream; ``?since=N&wait=S``
                                long-polls for events past ``N``
``GET /jobs/<id>/result``       finished statistics as JSON, or the
                                pickled payload with ``?format=pickle``
==============================  ======================================

The server is a ``ThreadingHTTPServer``: handler threads validate and
enqueue, the runner's asyncio loop schedules, and the blocking batch
work happens on executor threads / worker processes -- so concurrent
submissions and polls never block each other.  FastAPI would be the
production face of this (see ``docs/service.md``); the stdlib server
keeps the dependency budget at zero while serving the same contract.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import JobRunner, to_jsonable
from repro.service.store import ResultStore

__all__ = ["ServiceServer"]


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against the server's :class:`JobRunner`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    @property
    def runner(self) -> JobRunner:
        """The job runner the owning server wraps."""
        return self.server.runner  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (tests boot many servers)."""

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        body = json.dumps(to_jsonable(payload)).encode()
        self._send(code, body, "application/json")

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _json_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        body = json.loads(raw.decode() or "{}")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _route(self) -> Tuple[Tuple[str, ...], Dict[str, str]]:
        parsed = urlparse(self.path)
        parts = tuple(p for p in parsed.path.split("/") if p)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        return parts, query

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch read-only routes."""
        try:
            parts, query = self._route()
            if parts == ("healthz",):
                jobs = self.runner.jobs()
                return self._send_json(
                    200,
                    {
                        "status": "ok",
                        "jobs": len(jobs),
                        "running": sum(
                            1 for j in jobs if j.status == "running"
                        ),
                    },
                )
            if parts == ("workers",):
                return self._send_json(
                    200,
                    {
                        "pids": sorted(
                            p.pid
                            for p in multiprocessing.active_children()
                            if p.pid is not None
                        )
                    },
                )
            if parts == ("store",):
                return self._send_json(200, self.runner.store.stats)
            if parts == ("jobs",):
                return self._send_json(
                    200, {"jobs": [j.describe() for j in self.runner.jobs()]}
                )
            if len(parts) >= 2 and parts[0] == "jobs":
                job = self.runner.job(parts[1])
                if job is None:
                    return self._error(404, f"unknown job {parts[1]!r}")
                if len(parts) == 2:
                    return self._send_json(200, job.describe())
                if parts[2:] == ("events",):
                    since = int(query.get("since", 0))
                    wait = min(float(query.get("wait", 0.0)), 30.0)
                    events = job.events_since(since, wait=wait)
                    return self._send_json(
                        200,
                        {
                            "status": job.status,
                            "events": events,
                            "next": since + len(events),
                        },
                    )
                if parts[2:] == ("result",):
                    return self._result(job, query)
            return self._error(404, f"no route for {self.path!r}")
        except Exception as exc:
            return self._error(400, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch the submission route."""
        try:
            parts, _ = self._route()
            if parts == ("jobs",):
                job = self.runner.submit(self._json_body())
                return self._send_json(202, job.describe())
            return self._error(404, f"no route for {self.path!r}")
        except Exception as exc:
            return self._error(400, f"{type(exc).__name__}: {exc}")

    def _result(self, job, query: Dict[str, str]) -> None:
        if job.status == "failed":
            return self._send_json(
                500, {"status": job.status, "error": job.error}
            )
        if not job.done:
            return self._send_json(
                409,
                {
                    "status": job.status,
                    "error": "job is not finished; poll /jobs/<id>",
                },
            )
        if query.get("format") == "pickle":
            import pickle

            blob = None
            if job.key is not None:
                blob = self.runner.store.peek_bytes(job.key)
            if blob is None:
                blob = pickle.dumps(job.payload(), protocol=4)
            return self._send(200, blob, "application/octet-stream")
        return self._send_json(
            200, {"status": job.status, "result": job.payload()}
        )


class ServiceServer:
    """The bound HTTP server + its runner, with a test-friendly lifecycle.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`).  ``start`` boots the runner's loop thread and a
    daemon thread for ``serve_forever``; ``stop`` shuts both down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        runner: Optional[JobRunner] = None,
        store: Optional[ResultStore] = None,
        concurrency: int = 2,
    ) -> None:
        self.runner = runner or JobRunner(store=store, concurrency=concurrency)
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.runner = self.runner  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """Bound host."""
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Boot the runner and the HTTP thread; returns self."""
        self.runner.start()
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the HTTP server and the job runner."""
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.runner.shutdown()

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI entry point."""
        self.runner.start()
        try:
            self._http.serve_forever()
        finally:
            self._http.server_close()
            self.runner.shutdown()
