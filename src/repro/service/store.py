"""Content-addressed result store with stack-key + seed deduplication.

The store maps a *grid key* -- a SHA-256 digest over every trial's
identity (the strict :func:`~repro.experiments.batch._stack_key`, which
pins algorithm, parameters, policy, layer count, and base-graph
adjacency, plus the seed and every per-trial override), the pulse budget,
and the runner's backend knobs -- to the pickled statistics payload of
the finished batch.  Two submissions with the same key are the same
computation bit-for-bit (every execution strategy of the batch runner is
bitwise-invariant), so the second is served from the store: a recorded
cache hit.

Deliberately *excluded* from the key: ``executor`` and ``shards``.  The
test suite pins that results are bitwise identical for every sharding,
so a grid first run serially and resubmitted with
``executor="process"`` is still a hit.  Included even though they are
also bitwise-invariant: ``kernel_backend`` / ``neighbor_backend`` /
``vectorize`` / the stacking and compaction knobs -- the conservative
reading of the cache contract (a backend bug should never be masked by
a cache hit recorded under another backend).

Values round-trip through :mod:`pickle`: ``put`` stores the pickled
bytes (and optionally a ``<key>.pkl`` file when the store is given a
directory), ``get`` unpickles a fresh copy -- so no consumer can mutate
the cached arrays of another.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.batch import CONFIG_RATES, BatchTrial, _stack_key

__all__ = ["CACHE_VERSION", "ResultStore", "grid_key", "trial_cell_key"]

#: Bumped whenever the key layout or payload schema changes, so stores
#: persisted to disk never serve a stale schema.
CACHE_VERSION = 1

#: The :class:`~repro.experiments.batch.BatchRunner` knobs that enter the
#: grid key, with their defaults.  ``executor``/``shards`` are absent by
#: design (see the module docstring).
KEYED_RUNNER_KNOBS: Dict[str, object] = {
    "vectorize": True,
    "stack": True,
    "stack_mixed_geometry": True,
    "compact_depth": True,
    "compact_width": True,
    "neighbor_backend": "auto",
    "kernel_backend": "auto",
    "store_times": True,
    "sketch_rank": None,
    "potential_levels": (),
}


def trial_cell_key(trial: BatchTrial) -> Tuple:
    """One trial's identity tuple (everything that can change its result).

    The strict stack key covers algorithm, parameters, policy, layer
    count, and base-graph adjacency; the rest of the tuple adds the seed
    and every per-trial override (fault plan, layer-0 schedule, delay
    model, clock rates, campaign).  ``CONFIG_RATES`` and config-derived
    delays are functions of the seed, so the sentinel/seed pair pins
    them without materializing anything.
    """
    config = trial.config
    return (
        _stack_key(trial, mixed_geometry=False),
        config.seed,
        config.diameter,
        trial.fault_plan,
        trial.layer0,
        None if trial.delay_model is None else trial.delay_model,
        (
            CONFIG_RATES
            if trial.clock_rates is CONFIG_RATES
            else trial.clock_rates
        ),
        trial.campaign,
    )


def grid_key(
    trials: Sequence[BatchTrial],
    num_pulses: int,
    runner_knobs: Optional[Dict[str, object]] = None,
) -> Optional[str]:
    """SHA-256 digest addressing one grid's results, or ``None``.

    ``None`` means *uncacheable*: some component of the grid (a lambda
    delay classifier, an unpicklable rate provider) has no stable byte
    representation, so the job runs and serves but never enters the
    store.  ``runner_knobs`` entries outside :data:`KEYED_RUNNER_KNOBS`
    (``executor``, ``shards``) are ignored; missing ones key on their
    defaults, so an explicit default and an omitted knob hash alike.
    """
    knobs = dict(KEYED_RUNNER_KNOBS)
    for name, value in (runner_knobs or {}).items():
        if name in knobs:
            knobs[name] = (
                tuple(value) if name == "potential_levels" else value
            )
    identity = (
        CACHE_VERSION,
        int(num_pulses),
        tuple(sorted(knobs.items())),
        tuple(trial_cell_key(trial) for trial in trials),
    )
    try:
        blob = pickle.dumps(identity, protocol=4)
    except Exception:
        return None
    return hashlib.sha256(blob).hexdigest()


class ResultStore:
    """In-memory (optionally directory-backed) pickle store with hit stats.

    Thread-safe: the HTTP handler threads and the job runner's executor
    threads share one instance.  ``get``/``put`` count hits and misses;
    :attr:`stats` serves them for the ``/store`` endpoint and the dedup
    tests.

    Example
    -------
    >>> from repro.service.store import ResultStore
    >>> store = ResultStore()
    >>> store.put("deadbeef", {"answer": 42})
    >>> store.get("deadbeef")
    {'answer': 42}
    >>> store.stats["hits"], store.stats["misses"]
    (1, 0)
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._blobs: Dict[str, bytes] = {}
        self._hits = 0
        self._misses = 0
        self._directory = Path(directory) if directory else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            for path in sorted(self._directory.glob("*.pkl")):
                self._blobs[path.stem] = path.read_bytes()

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._blobs

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The pickled payload for ``key`` (counting hit/miss), or None."""
        with self._lock:
            blob = self._blobs.get(key)
            if blob is None:
                self._misses += 1
            else:
                self._hits += 1
            return blob

    def peek_bytes(self, key: str) -> Optional[bytes]:
        """Like :meth:`get_bytes` but without touching the hit/miss stats.

        The result-fetch endpoints use this, so ``stats`` counts *dedup*
        decisions only -- one get per executed or deduplicated job --
        not how often clients download a finished payload.
        """
        with self._lock:
            return self._blobs.get(key)

    def get(self, key: str):
        """Unpickle a fresh copy of the payload under ``key``, or None."""
        blob = self.get_bytes(key)
        return None if blob is None else pickle.loads(blob)

    def put(self, key: str, payload) -> None:
        """Pickle ``payload`` under ``key`` (idempotent for equal keys)."""
        blob = pickle.dumps(payload, protocol=4)
        with self._lock:
            self._blobs[key] = blob
        if self._directory is not None:
            tmp = self._directory / f".{key}.tmp"
            tmp.write_bytes(blob)
            tmp.replace(self._directory / f"{key}.pkl")

    @property
    def stats(self) -> Dict[str, int]:
        """``{"entries", "hits", "misses"}`` counters."""
        with self._lock:
            return {
                "entries": len(self._blobs),
                "hits": self._hits,
                "misses": self._misses,
            }
