"""Link delay models.

Every edge of the layered graph carries an unknown but fixed delay in
``[d - u, d]`` (Section 2, "Communication").  Corollary 1.5 additionally
allows per-pulse variation of up to ``n^{-1/2} u log D``; that is modelled
by :class:`~repro.delays.models.VaryingDelayModel`.
"""

from repro.delays.models import (
    AdversarialSplitDelays,
    DelayModel,
    StaticDelayModel,
    UniformDelayModel,
    VaryingDelayModel,
)

__all__ = [
    "AdversarialSplitDelays",
    "DelayModel",
    "StaticDelayModel",
    "UniformDelayModel",
    "VaryingDelayModel",
]
