"""Delay model implementations.

A delay model answers "what is the delay of edge ``e`` for pulse ``k``?".
Edges are pairs of :data:`~repro.topology.layered.NodeId`.  All models are
deterministic functions of their seed and the edge identity -- the sampled
delay never depends on query order, so the event-driven and fast simulators
see identical executions.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.topology.layered import NodeId

__all__ = [
    "DelayModel",
    "UniformDelayModel",
    "StaticDelayModel",
    "AdversarialSplitDelays",
    "VaryingDelayModel",
]

Edge = Tuple[NodeId, NodeId]


def _entropy_word(value) -> int:
    """Stable non-negative 32-bit word from an int or string node part."""
    if isinstance(value, int):
        return value & 0xFFFFFFFF
    return zlib.crc32(repr(value).encode())


def _edge_rng(seed: int, edge: Edge) -> np.random.Generator:
    """Deterministic per-edge generator, independent of query order."""
    (v1, l1), (v2, l2) = edge
    entropy = [seed & 0xFFFFFFFF] + [
        _entropy_word(part) for part in (v1, l1, v2, l2)
    ]
    return np.random.default_rng(np.random.SeedSequence(entropy))


class DelayModel(ABC):
    """Maps ``(edge, pulse_index)`` to an end-to-end delay.

    ``pulse_invariant`` declares that ``delay(edge, k)`` does not depend on
    ``k``; the vectorized fast-simulator sweep then caches per-layer delay
    arrays across pulses.  It defaults to False so custom subclasses stay
    correct without opting in.

    Because models are deterministic functions of their seed and the edge
    identity (and the pulse, unless ``pulse_invariant``), the vectorized
    kernels cache the per-layer delay *arrays* they gather on the model
    itself (``_edge_array_cache``), keyed by the querying graph's edge
    structure -- so repeated runs and freshly constructed simulations over
    the same model skip the per-edge Python loop.  Replace the model
    rather than mutating its state to get different delays.
    """

    pulse_invariant = False

    def __init__(self, d: float, u: float) -> None:
        if d <= 0:
            raise ValueError(f"d must be positive, got {d}")
        if not 0 <= u <= d:
            raise ValueError(f"u must lie in [0, d], got {u}")
        self.d = d
        self.u = u
        #: per-edge-structure cache of gathered delay arrays; see class
        #: docstring and :meth:`repro.core.fast._VectorSweep.delay_arrays`.
        self._edge_array_cache: Dict[object, Dict] = {}

    @abstractmethod
    def delay(self, edge: Edge, pulse: int = 0) -> float:
        """Delay applied to pulse ``pulse`` on ``edge``; in ``[d - u, d]``."""

    def _clip(self, value: float) -> float:
        return min(max(value, self.d - self.u), self.d)


class UniformDelayModel(DelayModel):
    """Every edge has the same fixed delay (default: the midpoint)."""

    pulse_invariant = True

    def __init__(self, d: float, u: float, value: float | None = None) -> None:
        super().__init__(d, u)
        if value is None:
            value = d - u / 2.0
        if not d - u <= value <= d:
            raise ValueError(f"value {value} outside [d-u, d]=[{d - u}, {d}]")
        self.value = value

    def delay(self, edge: Edge, pulse: int = 0) -> float:
        return self.value


class StaticDelayModel(DelayModel):
    """Independent per-edge delays, uniform in ``[d - u, d]``, fixed forever.

    This is the paper's baseline communication model: "each edge has an
    unknown, but fixed associated delay".
    """

    pulse_invariant = True

    def __init__(self, d: float, u: float, seed: int = 0) -> None:
        super().__init__(d, u)
        self.seed = seed
        self._cache: Dict[Edge, float] = {}

    def delay(self, edge: Edge, pulse: int = 0) -> float:
        cached = self._cache.get(edge)
        if cached is None:
            rng = _edge_rng(self.seed, edge)
            cached = float(rng.uniform(self.d - self.u, self.d))
            self._cache[edge] = cached
        return cached


class AdversarialSplitDelays(DelayModel):
    """Delays chosen by a classifier: ``d`` on "slow" edges, ``d - u`` else.

    Reproduces the worst-case assignment of Figure 1 (left), where one flank
    of the grid runs at maximum delay and the other at minimum, piling up
    ``Theta(u * D)`` of skew under naive TRIX forwarding.
    """

    pulse_invariant = True

    def __init__(
        self,
        d: float,
        u: float,
        slow_edge: Callable[[Edge], bool],
    ) -> None:
        super().__init__(d, u)
        self._slow_edge = slow_edge

    def delay(self, edge: Edge, pulse: int = 0) -> float:
        return self.d if self._slow_edge(edge) else self.d - self.u


class VaryingDelayModel(DelayModel):
    """Static base delays plus a bounded per-pulse random walk.

    Models Corollary 1.5(ii): link delays varying by up to
    ``max_step`` between consecutive pulses, always clipped to
    ``[d - u, d]``.  The walk for each edge is generated lazily but
    deterministically from ``seed`` and the edge identity.
    """

    def __init__(
        self, d: float, u: float, max_step: float, seed: int = 0
    ) -> None:
        super().__init__(d, u)
        if max_step < 0:
            raise ValueError(f"max_step must be >= 0, got {max_step}")
        self.max_step = max_step
        self.seed = seed
        self._walks: Dict[Edge, List[float]] = {}
        self._rngs: Dict[Edge, np.random.Generator] = {}

    def delay(self, edge: Edge, pulse: int = 0) -> float:
        if pulse < 0:
            raise ValueError(f"pulse must be >= 0, got {pulse}")
        walk = self._walks.get(edge)
        if walk is None:
            rng = _edge_rng(self.seed, edge)
            walk = [float(rng.uniform(self.d - self.u, self.d))]
            self._walks[edge] = walk
            self._rngs[edge] = rng
        rng = self._rngs[edge]
        while len(walk) <= pulse:
            step = float(rng.uniform(-self.max_step, self.max_step))
            walk.append(self._clip(walk[-1] + step))
        return walk[pulse]
