"""Gradient TRIX: fault-tolerant gradient clock synchronization.

Reproduction of "Clock Synchronization with Gradient TRIX" (Lenzen &
Srinivas, PODC 2025, arXiv:2301.05073).  The package provides

* the layered grid topology and its base graphs (:mod:`repro.topology`),
* hardware clock and link delay models (:mod:`repro.clocks`,
  :mod:`repro.delays`),
* the fault model (:mod:`repro.faults`),
* a deterministic discrete-event engine (:mod:`repro.engine`),
* the Gradient TRIX pulse-forwarding algorithms and a fast closed-form
  simulator (:mod:`repro.core`),
* the HEX and naive-TRIX baselines (:mod:`repro.baselines`),
* skew/potential analysis (:mod:`repro.analysis`), and
* reproducible experiment drivers for every table, figure and theorem of
  the paper (:mod:`repro.experiments`).

Quickstart::

    from repro import Parameters, replicated_line, LayeredGraph, FastSimulation

    params = Parameters(d=1.0, u=0.01, vartheta=1.001)
    base = replicated_line(16)
    graph = LayeredGraph(base, num_layers=16)
    result = FastSimulation(graph, params).run(num_pulses=5)
    print(result.max_local_skew(), params.local_skew_bound(base.diameter))
"""

from repro.params import Parameters
from repro.topology import (
    BaseGraph,
    LayeredGraph,
    complete_graph,
    cycle_graph,
    replicated_line,
    torus_graph,
)
from repro.core import (
    ChainLayer0,
    CorrectionPolicy,
    FastResult,
    FastSimulation,
    JitteredLayer0,
    PerfectLayer0,
    compute_correction,
)
from repro.faults import FaultPlan
from repro.delays import (
    AdversarialSplitDelays,
    StaticDelayModel,
    UniformDelayModel,
    VaryingDelayModel,
)

__version__ = "1.0.0"

__all__ = [
    "AdversarialSplitDelays",
    "BaseGraph",
    "ChainLayer0",
    "CorrectionPolicy",
    "FastResult",
    "FastSimulation",
    "FaultPlan",
    "JitteredLayer0",
    "LayeredGraph",
    "Parameters",
    "PerfectLayer0",
    "StaticDelayModel",
    "UniformDelayModel",
    "VaryingDelayModel",
    "complete_graph",
    "compute_correction",
    "cycle_graph",
    "replicated_line",
    "torus_graph",
]
