"""Idealized clock tree baseline.

A balanced binary clock tree distributes the source pulse to ``2**depth``
leaves; each tree edge contributes an independent delay in ``[d - u, d]``.
Leaves at distance 2 in the tree can diverge by up to ``2 * u`` per shared
level -- and, crucially, a single broken edge silences an entire subtree:
no fault tolerance at all.  The paper's introduction motivates grids
precisely because trees do not scale in the presence of faults; this
baseline provides the reference numbers for the example scripts.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

__all__ = ["ClockTree"]


class ClockTree:
    """Balanced binary tree with random edge delays.

    ``broken_edges`` contains indices of *internal nodes* whose feeding
    edge is broken; every leaf under such a node receives no clock at all.
    Internal nodes are indexed heap-style: root 1, children ``2i``/``2i+1``;
    leaves are nodes ``2**depth .. 2**(depth+1) - 1``.
    """

    def __init__(
        self,
        depth: int,
        d: float,
        u: float,
        seed: int = 0,
        broken_edges: Optional[Set[int]] = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if d <= 0 or not 0 <= u <= d:
            raise ValueError("need d > 0 and 0 <= u <= d")
        self.depth = depth
        self.d = d
        self.u = u
        self.broken_edges = set(broken_edges or ())
        rng = np.random.default_rng(seed)
        # Edge i feeds heap node i (root has no feeding edge).
        self._edge_delay = rng.uniform(d - u, d, size=2 ** (depth + 1))

    @property
    def num_leaves(self) -> int:
        """Number of leaves, ``2**depth``."""
        return 2**self.depth

    def leaf_times(self, source_time: float = 0.0) -> List[float]:
        """Arrival time of the pulse at each leaf (NaN below broken edges)."""
        total = 2 ** (self.depth + 1)
        arrival = np.full(total, np.nan)
        arrival[1] = source_time
        for node in range(2, total):
            parent = node // 2
            if node in self.broken_edges or np.isnan(arrival[parent]):
                continue
            arrival[node] = arrival[parent] + self._edge_delay[node]
        return [float(t) for t in arrival[2**self.depth :]]

    def local_skew(self, source_time: float = 0.0) -> float:
        """Max offset between *adjacent* leaves (NaN pairs skipped)."""
        times = self.leaf_times(source_time)
        worst = 0.0
        for a, b in zip(times, times[1:]):
            if np.isnan(a) or np.isnan(b):
                continue
            worst = max(worst, abs(a - b))
        return worst

    def reachable_leaves(self) -> int:
        """Number of leaves still receiving the clock."""
        return sum(1 for t in self.leaf_times() if not np.isnan(t))
