"""Baseline clock distribution schemes the paper compares against.

* :mod:`repro.baselines.trix` -- TRIX [LW20]: same minimal-degree grid as
  Gradient TRIX, but with the naive rule "forward upon the *second* copy of
  each pulse".  Tolerates one faulty predecessor, accumulates
  ``Theta(u * D)`` local skew (Figure 1 left, Table 1).
* :mod:`repro.baselines.hex` -- HEX [DFL+16]: honeycomb-style grid whose
  nodes also listen to two same-layer in-neighbors; a crashed preceding-
  layer neighbor costs an additive ``d`` of local skew (Figure 1 right).
* :mod:`repro.baselines.clock_tree` -- an idealized fault-intolerant clock
  tree, for context in the examples.
"""

from repro.baselines.trix import NaiveTrixSimulation
from repro.baselines.hex import HexResult, HexSimulation
from repro.baselines.clock_tree import ClockTree

__all__ = ["ClockTree", "HexResult", "HexSimulation", "NaiveTrixSimulation"]
