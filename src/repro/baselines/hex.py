"""HEX clock distribution [DFL+16].

A cylinder grid of width ``W`` (same-layer ring) and depth ``L``.  Node
``(i, l)`` has four in-neighbors: ``(i-1, l-1)`` and ``(i, l-1)`` on the
preceding layer, plus its ring neighbors ``(i-1, l)`` and ``(i+1, l)``.
A node generates its pulse upon the *second* copy received (from distinct
in-neighbors), after a fixed local wait.

Two consequences the paper highlights (Figure 1 right, Table 1):

* fault tolerance is cheap -- a crashed preceding-layer neighbor is covered
  by the same-layer links;
* but covering it costs a full hop: the victim fires roughly ``d`` after
  its ring neighbors, so a single crash inflates local skew by an additive
  ``d >> u`` (HEX's ``d + O(u^2 D / d)`` bound).

Same-layer timing dependencies make fire times a fixed point; since they
are monotone, a Dijkstra-style second-arrival percolation per layer
computes them exactly.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.core.layer0 import Layer0Schedule, PerfectLayer0
from repro.delays.models import DelayModel, UniformDelayModel
from repro.params import Parameters

__all__ = ["HexSimulation", "HexResult"]

HexNode = Tuple[int, int]  # (ring position, layer)


class HexResult:
    """Pulse-time matrices of a HEX run.

    ``times[k, l, i]`` is the time node ``(i, l)`` generated pulse ``k``
    (NaN for crashed nodes and nodes that never collected two copies).
    """

    def __init__(
        self, width: int, num_layers: int, num_pulses: int, crashed: Set[HexNode]
    ) -> None:
        self.width = width
        self.num_layers = num_layers
        self.num_pulses = num_pulses
        self.crashed = set(crashed)
        self.times = np.full((num_pulses, num_layers, width), np.nan)

    def local_skew_per_layer(self) -> np.ndarray:
        """Max same-pulse offset between ring-adjacent correct nodes."""
        skews = np.zeros(self.num_layers)
        for layer in range(self.num_layers):
            worst = 0.0
            for i in range(self.width):
                j = (i + 1) % self.width
                if (i, layer) in self.crashed or (j, layer) in self.crashed:
                    continue
                diffs = np.abs(
                    self.times[:, layer, i] - self.times[:, layer, j]
                )
                finite = diffs[np.isfinite(diffs)]
                if finite.size:
                    worst = max(worst, float(np.max(finite)))
            skews[layer] = worst
        return skews

    def max_local_skew(self) -> float:
        """``sup_l`` of :meth:`local_skew_per_layer`."""
        return float(np.max(self.local_skew_per_layer()))


class HexSimulation:
    """Second-copy forwarding on the HEX cylinder (see module docstring).

    ``crashed`` nodes never send anything.  ``forward_wait`` defaults to
    ``Lambda - d`` so the pulse period matches the other schemes.
    """

    def __init__(
        self,
        width: int,
        num_layers: int,
        params: Parameters,
        delay_model: Optional[DelayModel] = None,
        crashed: Iterable[HexNode] = (),
        layer0: Optional[Layer0Schedule] = None,
        forward_wait: Optional[float] = None,
    ) -> None:
        if width < 3:
            raise ValueError(f"width must be >= 3, got {width}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.width = width
        self.num_layers = num_layers
        self.params = params
        self.delay_model = delay_model or UniformDelayModel(params.d, params.u)
        self.crashed: Set[HexNode] = set(crashed)
        self.layer0 = layer0 or PerfectLayer0(params.Lambda)
        if forward_wait is None:
            forward_wait = params.Lambda - params.d
        self.forward_wait = forward_wait

    def _delay(self, src: HexNode, dst: HexNode, pulse: int) -> float:
        return self.delay_model.delay((src, dst), pulse)

    def run(self, num_pulses: int) -> HexResult:
        """Simulate ``num_pulses`` pulses through all layers."""
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        result = HexResult(
            self.width, self.num_layers, num_pulses, self.crashed
        )
        for k in range(num_pulses):
            for i in range(self.width):
                if (i, 0) not in self.crashed:
                    result.times[k, 0, i] = self.layer0.pulse_time(i, k)
            for layer in range(1, self.num_layers):
                self._run_layer(result, k, layer)
        return result

    def _run_layer(self, result: HexResult, k: int, layer: int) -> None:
        """Second-arrival percolation over one layer (monotone, Dijkstra)."""
        heap: list = []
        counts: Dict[int, int] = {i: 0 for i in range(self.width)}
        fired: Dict[int, float] = {}

        def push(src: HexNode, dst_i: int, send_time: float) -> None:
            if (dst_i, layer) in self.crashed:
                return
            arrival = send_time + self._delay(src, (dst_i, layer), k)
            heapq.heappush(heap, (arrival, dst_i))

        # Seed with preceding-layer arrivals.
        for i in range(self.width):
            src = (i, layer - 1)
            if src in self.crashed:
                continue
            send = result.times[k, layer - 1, i]
            if math.isnan(send):
                continue
            push(src, i, send)
            push(src, (i + 1) % self.width, send)

        while heap:
            arrival, i = heapq.heappop(heap)
            if i in fired:
                continue
            counts[i] += 1
            if counts[i] < 2:
                continue
            fire = arrival + self.forward_wait
            fired[i] = fire
            result.times[k, layer, i] = fire
            # Ring propagation to both same-layer neighbors.
            push((i, layer), (i - 1) % self.width, fire)
            push((i, layer), (i + 1) % self.width, fire)
