"""Naive TRIX forwarding [LW20] on the Gradient TRIX grid.

Each node of layer ``l >= 1`` waits for the *second* copy of the pulse from
its (three or more) predecessors, then forwards after a fixed local wait of
``Lambda - d``.  One faulty predecessor cannot speed the node up (the first
copy is ignored) nor stall it (two correct copies always arrive).

The scheme's weakness, and the reason the paper exists: the second-arrival
rule does not couple a node to *both* of its flank neighbors, so delay
asymmetry accumulates ``Theta(u)`` of skew per layer -- linear in the grid
depth (Figure 1 left; Table 1's ``O(u * D)`` local skew row).

The simulator reuses :class:`~repro.core.fast.FastResult`, so the analysis
package applies unchanged.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.fast import BRANCH_CODES, FastResult, RateProvider
from repro.core.layer0 import Layer0Schedule, PerfectLayer0
from repro.delays.models import DelayModel, UniformDelayModel
from repro.faults.injection import FaultPlan
from repro.faults.model import FaultContext
from repro.params import Parameters
from repro.topology.layered import LayeredGraph, NodeId

__all__ = ["NaiveTrixSimulation"]


class NaiveTrixSimulation:
    """Second-copy pulse forwarding on the layered grid.

    Parameters mirror :class:`~repro.core.fast.FastSimulation`; the
    correction machinery is absent because naive TRIX applies none.

    ``forward_wait`` is the local waiting time between the second copy and
    the forwarded pulse; ``Lambda - d`` (the default) aligns the pulse
    period with Gradient TRIX so that results are directly comparable.
    """

    def __init__(
        self,
        graph: LayeredGraph,
        params: Parameters,
        delay_model: Optional[DelayModel] = None,
        clock_rates: RateProvider = None,
        fault_plan: Optional[FaultPlan] = None,
        layer0: Optional[Layer0Schedule] = None,
        forward_wait: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.delay_model = delay_model or UniformDelayModel(params.d, params.u)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.layer0 = layer0 or PerfectLayer0(params.Lambda)
        self._rates = clock_rates
        if forward_wait is None:
            forward_wait = params.Lambda - params.d
        if forward_wait < 0:
            raise ValueError(f"forward_wait must be >= 0, got {forward_wait}")
        self.forward_wait = forward_wait

    def rate(self, node: NodeId, pulse: int) -> float:
        """Hardware clock rate of ``node`` during iteration ``pulse``."""
        if self._rates is None:
            return 1.0
        if callable(self._rates):
            return float(self._rates(node, pulse))
        return float(self._rates.get(node, 1.0))

    def run(self, num_pulses: int) -> FastResult:
        """Simulate ``num_pulses`` pulses; same result type as FastSimulation."""
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        result = FastResult(self.graph, self.params, self.fault_plan, num_pulses)
        for k in range(num_pulses):
            for v in self.graph.base.nodes():
                t = self.layer0.pulse_time(v, k)
                result.protocol_times[k, 0, v] = t
                result.branches[k, 0, v] = BRANCH_CODES["layer0"]
                node = (v, 0)
                if self.fault_plan.is_faulty(node):
                    self._record_fault_sends(result, node, k, t)
                else:
                    result.times[k, 0, v] = t
            for layer in range(1, self.graph.num_layers):
                for v in self.graph.base.nodes():
                    node = (v, layer)
                    t = self._forward_time(result, node, k)
                    if t is None:
                        continue
                    result.protocol_times[k, layer, v] = t
                    if self.fault_plan.is_faulty(node):
                        self._record_fault_sends(result, node, k, t)
                    else:
                        result.times[k, layer, v] = t
        return result

    def _record_fault_sends(
        self, result: FastResult, node: NodeId, k: int, correct_time: float
    ) -> None:
        behavior = self.fault_plan.behavior(node)
        assert behavior is not None
        context = FaultContext(
            node=node, pulse=k, correct_time=correct_time, kappa=self.params.kappa
        )
        for successor in self.graph.successors(node):
            send = behavior.send_time(context, successor)
            result.fault_sends.setdefault((node, successor), {})[k] = send

    def _forward_time(
        self, result: FastResult, node: NodeId, k: int
    ) -> Optional[float]:
        arrivals: List[float] = []
        for pred in self.graph.predecessors(node):
            pv, pl = pred
            if self.fault_plan.is_faulty(pred):
                send = result.fault_sends.get((pred, node), {}).get(k)
            else:
                t = result.times[k, pl, pv]
                send = None if math.isnan(t) else float(t)
            if send is None:
                continue
            arrivals.append(send + self.delay_model.delay((pred, node), k))
        if len(arrivals) < 2:
            return None  # a node with two silent predecessors deadlocks
        arrivals.sort()
        second = arrivals[1]
        return second + self.forward_wait / self.rate(node, k)
